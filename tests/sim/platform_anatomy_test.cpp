#include "sim/platform_anatomy.hpp"

#include <gtest/gtest.h>

#include "core/flow_detector.hpp"
#include "net/flow_table.hpp"
#include "sim/session.hpp"

namespace cgctx::sim {
namespace {

const net::Ipv4Addr kClient = net::Ipv4Addr::from_octets(10, 4, 4, 4);
const net::Ipv4Addr kServer = net::Ipv4Addr::from_octets(119, 81, 2, 2);

TEST(PlatformAnatomy, ContainsAllThreePhases) {
  ml::Rng rng(1);
  const auto flows = platform_session_anatomy(
      kClient, kServer, net::duration_from_seconds(60.0), rng);
  bool seen[3] = {};
  for (const PlatformFlow& flow : flows) {
    EXPECT_FALSE(flow.packets.empty()) << to_string(flow.phase);
    seen[static_cast<int>(flow.phase)] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

TEST(PlatformAnatomy, AllTrafficPrecedesTheStream) {
  ml::Rng rng(2);
  const auto stream_start = net::duration_from_seconds(90.0);
  const auto flows =
      platform_session_anatomy(kClient, kServer, stream_start, rng);
  for (const PlatformFlow& flow : flows)
    for (const auto& pkt : flow.packets)
      EXPECT_LT(pkt.timestamp, stream_start) << to_string(flow.phase);
}

TEST(PlatformAnatomy, PhasesUseExpectedTransports) {
  ml::Rng rng(3);
  const auto flows = platform_session_anatomy(
      kClient, kServer, net::duration_from_seconds(60.0), rng);
  for (const PlatformFlow& flow : flows) {
    for (const auto& pkt : flow.packets) {
      const auto up = pkt.direction == net::Direction::kUpstream
                          ? pkt.tuple
                          : pkt.tuple.reversed();
      if (flow.phase == PlatformPhase::kConnectivityProbe) {
        EXPECT_EQ(up.protocol, 17);
        EXPECT_EQ(up.dst_ip, kServer);  // probes the streaming server
      } else {
        EXPECT_EQ(up.protocol, 6);
        EXPECT_EQ(up.dst_port, 443);
      }
    }
  }
}

TEST(PlatformAnatomy, FlattenIsTimeSorted) {
  ml::Rng rng(4);
  const auto packets = flatten(platform_session_anatomy(
      kClient, kServer, net::duration_from_seconds(45.0), rng));
  ASSERT_GT(packets.size(), 20u);
  for (std::size_t i = 1; i < packets.size(); ++i)
    EXPECT_LE(packets[i - 1].timestamp, packets[i].timestamp);
}

TEST(PlatformAnatomy, DetectorRejectsAdminTraffic) {
  // The anatomy alone (no streaming flow) must never trigger the
  // cloud-gaming detector — in particular the UDP probe flow, which
  // shares the server and a platform port with the stream.
  ml::Rng rng(5);
  const auto packets = flatten(platform_session_anatomy(
      kClient, kServer, net::duration_from_seconds(120.0), rng));
  net::FlowTable table;
  const core::CloudGamingFlowDetector detector;
  for (const auto& pkt : packets)
    EXPECT_FALSE(detector.detect(table.add(pkt)).has_value());
}

TEST(PlatformAnatomy, DetectorStillFindsStreamAmongAnatomy) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kFortnite;
  spec.gameplay_seconds = 5;
  spec.seed = 6;
  spec.start_time = net::duration_from_seconds(40.0);
  const auto session = gen.generate(spec);
  ml::Rng rng(7);
  auto packets = flatten(platform_session_anatomy(
      session.client_ip, session.tuple.dst_ip, session.launch_begin, rng));
  packets.insert(packets.end(), session.packets.begin(),
                 session.packets.end());
  std::sort(packets.begin(), packets.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });

  net::FlowTable table;
  const core::CloudGamingFlowDetector detector;
  std::optional<core::DetectionResult> detection;
  for (const auto& pkt : packets) {
    if (!detection) detection = detector.detect(table.add(pkt));
  }
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->flow, session.tuple.canonical());
}

}  // namespace
}  // namespace cgctx::sim
