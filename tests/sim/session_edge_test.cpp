// Edge-case coverage for the session generator beyond the main
// session_test.cpp: degenerate durations, extreme settings, and the
// invariants that keep downstream feature extraction well-defined.
#include <gtest/gtest.h>

#include "sim/launch_signature.hpp"
#include "sim/session.hpp"

namespace cgctx::sim {
namespace {

TEST(SessionEdge, ZeroGameplayStillRendersLaunch) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kHearthstone;  // shortest launch (30 s)
  spec.gameplay_seconds = 0.0;
  spec.seed = 1;
  const auto session = gen.generate(spec);
  EXPECT_EQ(session.gameplay_begin, session.end);
  EXPECT_TRUE(session.stages.empty());
  EXPECT_GT(session.packets.size(), 1000u);  // the launch window
  EXPECT_EQ(session.slots.size(), 30u);
}

TEST(SessionEdge, SubSecondGameplay) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kCsgo;
  spec.gameplay_seconds = 0.5;
  spec.seed = 2;
  const auto session = gen.generate(spec);
  EXPECT_EQ(session.end - session.gameplay_begin,
            net::duration_from_seconds(0.5));
  ASSERT_FALSE(session.stages.empty());
  EXPECT_EQ(session.stages.front().stage, Stage::kIdle);
}

TEST(SessionEdge, NonZeroStartTimeShiftsEverything) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kDota2;
  spec.gameplay_seconds = 20.0;
  spec.seed = 3;
  const auto base = gen.generate(spec);
  spec.start_time = net::duration_from_seconds(500.0);
  const auto shifted = gen.generate(spec);
  ASSERT_EQ(base.packets.size(), shifted.packets.size());
  const net::Duration delta = net::duration_from_seconds(500.0);
  EXPECT_EQ(shifted.launch_begin - base.launch_begin, delta);
  EXPECT_EQ(shifted.end - base.end, delta);
  for (std::size_t i = 0; i < base.packets.size(); i += 211)
    EXPECT_EQ(shifted.packets[i].timestamp - base.packets[i].timestamp, delta);
}

TEST(SessionEdge, MinimumSettingsStillStream) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kHearthstone;
  spec.config.resolution = Resolution::kSd;
  spec.config.fps = 30;
  spec.gameplay_seconds = 30.0;
  spec.seed = 4;
  const auto session = gen.generate(spec);
  EXPECT_GT(session.peak_down_mbps, 0.3);
  std::size_t down = 0;
  for (const auto& pkt : session.packets)
    if (pkt.direction == net::Direction::kDownstream) ++down;
  EXPECT_GT(down, 500u);
}

TEST(SessionEdge, ExtremeBandwidthCapDegradesButSurvives) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kFortnite;
  spec.config.resolution = Resolution::kUhd;
  spec.config.fps = 120;
  spec.network = NetworkConditions{120.0, 20.0, 0.08, 1.5};  // brutal path
  spec.gameplay_seconds = 20.0;
  spec.seed = 5;
  const auto session = gen.generate(spec);
  EXPECT_LE(session.peak_down_mbps, 1.5 * 0.85 + 1e-9);
  EXPECT_FALSE(session.packets.empty());
  for (const auto& slot : session.slots) {
    EXPECT_GE(slot.frames, 0.0);
    EXPECT_LE(slot.loss_rate, 1.0);
  }
}

TEST(SessionEdge, TailTitlesDifferAcrossSessionsButNotWithinSeed) {
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kOtherSpectate;
  spec.gameplay_seconds = 5.0;
  spec.seed = 6;
  const auto a1 = gen.generate(spec);
  const auto a2 = gen.generate(spec);
  EXPECT_EQ(a1.packets.size(), a2.packets.size());  // same seed, same render
  spec.seed = 7;
  const auto b = gen.generate(spec);
  // A different seed draws a different tail fingerprint: even the launch
  // duration generally changes.
  EXPECT_NE(a1.gameplay_begin - a1.launch_begin,
            b.gameplay_begin - b.launch_begin);
}

TEST(SessionEdge, SlotTelemetryNeverNegativeOrNan) {
  const SessionGenerator gen;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    SessionSpec spec;
    spec.title = static_cast<GameTitle>(seed % kNumTitles);
    spec.gameplay_seconds = 45.0;
    spec.seed = seed;
    spec.network = seed % 2 == 0 ? NetworkConditions::congested()
                                 : NetworkConditions::lab();
    const auto session = gen.generate_slots_only(spec);
    for (const auto& slot : session.slots) {
      EXPECT_TRUE(std::isfinite(slot.frames));
      EXPECT_GE(slot.frames, 0.0);
      EXPECT_GE(slot.rtt_ms, 0.0);
      EXPECT_GE(slot.loss_rate, 0.0);
      EXPECT_LE(slot.loss_rate, 1.0);
    }
  }
}

}  // namespace
}  // namespace cgctx::sim
