#include <gtest/gtest.h>

#include "core/flow_detector.hpp"
#include "net/flow_table.hpp"
#include "sim/session.hpp"

namespace cgctx::sim {
namespace {

/// Runs all packets through a flow table and returns the detector's first
/// positive verdict.
std::optional<core::DetectionResult> detect_over(
    const std::vector<net::PacketRecord>& packets) {
  net::FlowTable table;
  const core::CloudGamingFlowDetector detector;
  for (const auto& pkt : packets) {
    if (auto result = detector.detect(table.add(pkt))) return result;
  }
  return std::nullopt;
}

TEST(CloudPlatform, PortsSitInDetectorRanges) {
  EXPECT_EQ(streaming_port(CloudPlatform::kGeforceNow), 49004);
  EXPECT_EQ(streaming_port(CloudPlatform::kXboxCloud), 9002);
  EXPECT_EQ(streaming_port(CloudPlatform::kAmazonLuna), 44353);
  EXPECT_EQ(streaming_port(CloudPlatform::kPsCloudStreaming), 9296);
}

TEST(CloudPlatform, Names) {
  EXPECT_STREQ(to_string(CloudPlatform::kGeforceNow), "GeForce NOW");
  EXPECT_STREQ(to_string(CloudPlatform::kPsCloudStreaming),
               "PS5 Cloud Streaming");
}

/// Paper §4.1: the adapted detection signatures identify streaming flows
/// of all four major platforms. Sweep platform x a couple of titles.
class PlatformDetectionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlatformDetectionSweep, DetectedWithCorrectPlatformLabel) {
  const auto [platform_index, title_index] = GetParam();
  const auto platform = static_cast<CloudPlatform>(platform_index);
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = static_cast<GameTitle>(title_index * 5);  // 0, 5, 10
  spec.platform = platform;
  spec.gameplay_seconds = 3;
  spec.seed = 900 + static_cast<std::uint64_t>(platform_index * 10 + title_index);
  const auto session = gen.generate(spec);

  const auto result = detect_over(session.packets);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->flow, session.tuple.canonical());
  // The detector's platform label matches the generator's platform.
  EXPECT_STREQ(to_string(result->platform), to_string(platform));
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformDetectionSweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 3)));

TEST(CloudPlatform, TitleClassificationIsPlatformAgnostic) {
  // The launch fingerprint lives in packet sizes/timings, not the port:
  // identical seeds on different platforms yield near-identical launch
  // attribute vectors.
  const SessionGenerator gen;
  SessionSpec spec;
  spec.title = GameTitle::kGenshinImpact;
  spec.gameplay_seconds = 3;
  spec.seed = 42;
  spec.platform = CloudPlatform::kGeforceNow;
  const auto gfn = gen.generate(spec);
  spec.platform = CloudPlatform::kXboxCloud;
  const auto xbox = gen.generate(spec);
  ASSERT_EQ(gfn.packets.size(), xbox.packets.size());
  for (std::size_t i = 0; i < gfn.packets.size(); i += 97) {
    EXPECT_EQ(gfn.packets[i].payload_size, xbox.packets[i].payload_size);
    EXPECT_EQ(gfn.packets[i].timestamp, xbox.packets[i].timestamp);
  }
}

}  // namespace
}  // namespace cgctx::sim
