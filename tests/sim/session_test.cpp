#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/launch_signature.hpp"
#include "sim/volumetric.hpp"

namespace cgctx::sim {
namespace {

SessionSpec small_spec(GameTitle title = GameTitle::kCsgo,
                       std::uint64_t seed = 1) {
  SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = 60.0;
  spec.seed = seed;
  return spec;
}

TEST(Session, DeterministicForSameSeed) {
  const SessionGenerator gen;
  const auto a = gen.generate(small_spec());
  const auto b = gen.generate(small_spec());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].timestamp, b.packets[i].timestamp);
    EXPECT_EQ(a.packets[i].payload_size, b.packets[i].payload_size);
  }
}

TEST(Session, DifferentSeedsDiffer) {
  const SessionGenerator gen;
  const auto a = gen.generate(small_spec(GameTitle::kCsgo, 1));
  const auto b = gen.generate(small_spec(GameTitle::kCsgo, 2));
  EXPECT_NE(a.packets.size(), b.packets.size());
}

TEST(Session, PacketsAreTimeSorted) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec());
  for (std::size_t i = 1; i < session.packets.size(); ++i)
    EXPECT_LE(session.packets[i - 1].timestamp, session.packets[i].timestamp);
}

TEST(Session, TimelineBoundsAreConsistent) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec());
  const auto& sig = launch_signature(session.spec.title);
  EXPECT_EQ(session.gameplay_begin - session.launch_begin,
            net::duration_from_seconds(sig.duration_s));
  EXPECT_EQ(session.end - session.gameplay_begin,
            net::duration_from_seconds(60.0));
  ASSERT_FALSE(session.stages.empty());
  EXPECT_EQ(session.stages.front().begin, session.gameplay_begin);
  EXPECT_EQ(session.stages.back().end, session.end);
}

TEST(Session, LaunchWindowContainsAllThreePacketSizeClasses) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec(GameTitle::kGenshinImpact, 3));
  std::size_t full = 0;
  std::size_t other = 0;
  for (const auto& pkt : session.packets) {
    if (pkt.timestamp >= session.gameplay_begin) break;
    if (pkt.direction != net::Direction::kDownstream) continue;
    if (pkt.payload_size >= kFullPayloadBytes) {
      ++full;
    } else {
      ++other;
    }
  }
  EXPECT_GT(full, 100u);
  EXPECT_GT(other, 50u);
}

TEST(Session, DownstreamCarriesConsistentRtp) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec());
  std::optional<std::uint32_t> down_ssrc;
  std::optional<std::uint32_t> up_ssrc;
  for (const auto& pkt : session.packets) {
    ASSERT_TRUE(pkt.rtp.has_value());
    if (pkt.direction == net::Direction::kDownstream) {
      if (!down_ssrc) down_ssrc = pkt.rtp->ssrc;
      EXPECT_EQ(pkt.rtp->ssrc, *down_ssrc);
    } else {
      if (!up_ssrc) up_ssrc = pkt.rtp->ssrc;
      EXPECT_EQ(pkt.rtp->ssrc, *up_ssrc);
    }
  }
  ASSERT_TRUE(down_ssrc.has_value());
  ASSERT_TRUE(up_ssrc.has_value());
  EXPECT_NE(*down_ssrc, *up_ssrc);
}

TEST(Session, MarkerBitsDelimitFrames) {
  const SessionGenerator gen;
  auto spec = small_spec(GameTitle::kFortnite, 5);
  spec.config.fps = 60;
  spec.config.resolution = Resolution::kFhd;
  const auto session = gen.generate(spec);
  // Count markers in one active gameplay second; should be near the
  // effective frame rate.
  std::size_t best_slot_markers = 0;
  const auto slots = static_cast<std::size_t>(
      net::duration_to_seconds(session.end - session.launch_begin));
  std::vector<std::size_t> markers(slots, 0);
  for (const auto& pkt : session.packets) {
    if (pkt.direction != net::Direction::kDownstream || !pkt.rtp->marker)
      continue;
    const auto slot = static_cast<std::size_t>(
        net::duration_to_seconds(pkt.timestamp - session.launch_begin));
    if (slot < slots) ++markers[slot];
  }
  for (std::size_t m : markers) best_slot_markers = std::max(best_slot_markers, m);
  EXPECT_GT(best_slot_markers, 40u);
  EXPECT_LT(best_slot_markers, 80u);
}

TEST(Session, SlotSamplesMatchPacketTallies) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec(GameTitle::kRocketLeague, 7));
  // Recompute slot volumetrics from packets and compare to slots[].
  std::vector<std::uint64_t> down_bytes(session.slots.size(), 0);
  for (const auto& pkt : session.packets) {
    const auto slot = static_cast<std::size_t>(
        net::duration_to_seconds(pkt.timestamp - session.launch_begin));
    if (slot >= down_bytes.size()) continue;
    if (pkt.direction == net::Direction::kDownstream)
      down_bytes[slot] += pkt.payload_size;
  }
  for (std::size_t s = 0; s < session.slots.size(); ++s)
    EXPECT_EQ(session.slots[s].down_bytes, down_bytes[s]) << "slot " << s;
}

TEST(Session, ActiveSlotsOutweighIdleSlots) {
  const SessionGenerator gen;
  auto spec = small_spec(GameTitle::kCyberpunk2077, 9);
  spec.gameplay_seconds = 300.0;
  const auto session = gen.generate_slots_only(spec);
  double active_sum = 0.0;
  std::size_t active_n = 0;
  double idle_sum = 0.0;
  std::size_t idle_n = 0;
  for (std::size_t s = 0; s < session.slots.size(); ++s) {
    const net::Timestamp mid = session.launch_begin +
                               net::duration_from_seconds(s + 0.5);
    if (session.in_launch(mid)) continue;
    const auto bytes = static_cast<double>(session.slots[s].down_bytes);
    if (session.stage_label_at(mid) == Stage::kActive) {
      active_sum += bytes;
      ++active_n;
    } else if (session.stage_label_at(mid) == Stage::kIdle) {
      idle_sum += bytes;
      ++idle_n;
    }
  }
  ASSERT_GT(active_n, 0u);
  ASSERT_GT(idle_n, 0u);
  // Idle streams at ~14% of peak; active at ~100%.
  EXPECT_GT(active_sum / active_n, 3.0 * idle_sum / idle_n);
}

TEST(Session, SlotsOnlySkipsGameplayPackets) {
  const SessionGenerator gen;
  auto spec = small_spec(GameTitle::kDota2, 11);
  const auto session = gen.generate_slots_only(spec);
  for (const auto& pkt : session.packets)
    EXPECT_LT(pkt.timestamp,
              session.gameplay_begin + net::duration_from_seconds(2.0));
  // But slot telemetry still covers the whole session.
  EXPECT_GE(session.slots.size(),
            static_cast<std::size_t>(
                net::duration_to_seconds(session.end - session.launch_begin)) -
                1);
}

TEST(Session, DemandScalesWithResolutionAndFps) {
  const GameInfo& game = info(GameTitle::kFortnite);
  ClientConfig uhd{DeviceClass::kPc, Os::kWindows, Software::kNativeApp,
                   Resolution::kUhd, 120};
  ClientConfig sd{DeviceClass::kPc, Os::kWindows, Software::kNativeApp,
                  Resolution::kSd, 30};
  EXPECT_NEAR(demand_mbps(game, uhd), game.peak_demand_mbps, 1e-9);
  EXPECT_LT(demand_mbps(game, sd), 0.2 * game.peak_demand_mbps);
}

TEST(Session, CongestedNetworkCapsPeak) {
  const SessionGenerator gen;
  auto spec = small_spec(GameTitle::kFortnite, 13);
  spec.config.resolution = Resolution::kUhd;
  spec.config.fps = 120;
  spec.network = NetworkConditions::congested();
  const auto session = gen.generate_slots_only(spec);
  EXPECT_LE(session.peak_down_mbps,
            spec.network.bandwidth_mbps * 0.85 + 1e-9);
  // Delivered frame rate is degraded below the setting.
  double max_frames = 0.0;
  for (const auto& slot : session.slots)
    max_frames = std::max(max_frames, slot.frames);
  EXPECT_LT(max_frames, 0.8 * spec.config.fps);
}

TEST(Session, LossShowsUpInSlotTelemetry) {
  const SessionGenerator gen;
  auto spec = small_spec(GameTitle::kCsgo, 15);
  spec.network = NetworkConditions::congested();  // 3% loss
  const auto session = gen.generate(spec);
  double total_loss = 0.0;
  for (const auto& slot : session.slots) total_loss += slot.loss_rate;
  EXPECT_GT(total_loss / static_cast<double>(session.slots.size()), 0.01);
}

TEST(Session, ClientAndServerAddressingIsPlausible) {
  const SessionGenerator gen;
  const auto session = gen.generate(small_spec());
  EXPECT_EQ(session.tuple.src_ip, session.client_ip);
  EXPECT_EQ(session.tuple.dst_port, 49004);  // GeForce NOW streaming port
  EXPECT_GE(session.tuple.src_port, 49152);  // ephemeral
  EXPECT_EQ(session.tuple.protocol, 17);
}

/// Property sweep: every popular title renders a valid packet-fidelity
/// session with both directions present.
class SessionTitleSweep : public ::testing::TestWithParam<int> {};

TEST_P(SessionTitleSweep, RendersValidSession) {
  const SessionGenerator gen;
  auto spec = small_spec(static_cast<GameTitle>(GetParam()),
                         static_cast<std::uint64_t>(GetParam()) + 40);
  spec.gameplay_seconds = 30.0;
  const auto session = gen.generate(spec);
  std::size_t up = 0;
  std::size_t down = 0;
  for (const auto& pkt : session.packets)
    (pkt.direction == net::Direction::kUpstream ? up : down) += 1;
  EXPECT_GT(up, 100u);
  EXPECT_GT(down, 1000u);
  EXPECT_GT(session.peak_down_mbps, 0.5);
  EXPECT_GT(session.peak_up_pps, 50.0);
}

INSTANTIATE_TEST_SUITE_P(AllTitles, SessionTitleSweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace cgctx::sim
