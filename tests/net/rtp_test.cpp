#include "net/rtp.hpp"

#include <gtest/gtest.h>

namespace cgctx::net {
namespace {

TEST(Rtp, SerializeParsesBack) {
  RtpHeader h;
  h.payload_type = 98;
  h.marker = true;
  h.sequence = 0xbeef;
  h.rtp_timestamp = 0x12345678;
  h.ssrc = 0xcafebabe;
  const auto bytes = h.serialize();
  ASSERT_EQ(bytes.size(), RtpHeader::kWireSize);
  const auto parsed = parse_rtp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_type, 98);
  EXPECT_TRUE(parsed->marker);
  EXPECT_EQ(parsed->sequence, 0xbeef);
  EXPECT_EQ(parsed->rtp_timestamp, 0x12345678u);
  EXPECT_EQ(parsed->ssrc, 0xcafebabeu);
}

TEST(Rtp, MarkerBitIndependentOfPayloadType) {
  RtpHeader h;
  h.payload_type = 0x7f;
  h.marker = false;
  const auto parsed = parse_rtp(h.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->marker);
  EXPECT_EQ(parsed->payload_type, 0x7f);
}

TEST(Rtp, RejectsShortBuffer) {
  const std::uint8_t bytes[] = {0x80, 0x60, 0x00};
  EXPECT_FALSE(parse_rtp(bytes).has_value());
}

TEST(Rtp, RejectsWrongVersion) {
  auto bytes = RtpHeader{}.serialize();
  bytes[0] = 0x40;  // version 1
  EXPECT_FALSE(parse_rtp(bytes).has_value());
}

TEST(Rtp, RejectsPaddingExtensionCsrc) {
  for (const std::uint8_t first : {0xa0, 0x90, 0x83}) {
    auto bytes = RtpHeader{}.serialize();
    bytes[0] = first;
    EXPECT_FALSE(parse_rtp(bytes).has_value()) << static_cast<int>(first);
  }
}

TEST(Rtp, ParsesWithTrailingPayload) {
  auto bytes = RtpHeader{.payload_type = 98, .marker = false, .sequence = 1,
                         .rtp_timestamp = 2, .ssrc = 3}
                   .serialize();
  bytes.resize(200, 0x55);
  const auto parsed = parse_rtp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ssrc, 3u);
}

/// Property sweep: every (marker, pt, seq) combination round-trips.
class RtpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RtpRoundTrip, FieldsPreserved) {
  const int i = GetParam();
  RtpHeader h;
  h.payload_type = static_cast<std::uint8_t>(i * 7 % 128);
  h.marker = i % 2 == 0;
  h.sequence = static_cast<std::uint16_t>(i * 12345);
  h.rtp_timestamp = static_cast<std::uint32_t>(i) * 90000u;
  h.ssrc = static_cast<std::uint32_t>(i) * 2654435761u;
  const auto parsed = parse_rtp(h.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_type, h.payload_type);
  EXPECT_EQ(parsed->marker, h.marker);
  EXPECT_EQ(parsed->sequence, h.sequence);
  EXPECT_EQ(parsed->rtp_timestamp, h.rtp_timestamp);
  EXPECT_EQ(parsed->ssrc, h.ssrc);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RtpRoundTrip, ::testing::Range(0, 40));

}  // namespace
}  // namespace cgctx::net
