#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "net/framing.hpp"

namespace cgctx::net {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cgctx_pcap_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
             ".pcap");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::filesystem::path path_;
};

PacketRecord make_record(Timestamp t, Direction dir, std::uint32_t payload,
                         std::uint16_t seq) {
  PacketRecord pkt;
  pkt.timestamp = t;
  pkt.direction = dir;
  pkt.payload_size = payload;
  const FiveTuple up{Ipv4Addr::from_octets(10, 0, 0, 5),
                     Ipv4Addr::from_octets(119, 81, 1, 9), 50123, 49004, 17};
  pkt.tuple = dir == Direction::kUpstream ? up : up.reversed();
  pkt.rtp = RtpHeader{.payload_type = 98, .marker = seq % 5 == 0,
                      .sequence = seq, .rtp_timestamp = seq * 1500u,
                      .ssrc = 0xabcd0123};
  return pkt;
}

TEST_F(PcapTest, WriteReadRoundTripPreservesRecords) {
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 50; ++i)
    packets.push_back(make_record(
        static_cast<Timestamp>(i) * 20 * kNanosPerMilli,
        i % 3 == 0 ? Direction::kUpstream : Direction::kDownstream,
        static_cast<std::uint32_t>(100 + i * 13), static_cast<std::uint16_t>(i)));

  EXPECT_EQ(write_pcap(path_, packets), packets.size());
  const auto loaded = read_pcap(path_, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].direction, packets[i].direction);
    EXPECT_EQ(loaded[i].payload_size, packets[i].payload_size);
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    ASSERT_TRUE(loaded[i].rtp.has_value());
    EXPECT_EQ(loaded[i].rtp->sequence, packets[i].rtp->sequence);
    EXPECT_EQ(loaded[i].rtp->marker, packets[i].rtp->marker);
  }
}

TEST_F(PcapTest, NanosecondTimestampsSurvive) {
  std::vector<PacketRecord> packets = {
      make_record(1'234'567'891'234'567, Direction::kDownstream, 500, 1)};
  write_pcap(path_, packets);
  const auto loaded = read_pcap(path_, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].timestamp, 1'234'567'891'234'567);
}

TEST_F(PcapTest, ReaderRejectsGarbageFile) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not a pcap file at all, not even close";
  out.close();
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST_F(PcapTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(PcapReader reader(path_ / "nope"), std::runtime_error);
}

TEST_F(PcapTest, ReaderThrowsOnTruncatedRecord) {
  std::vector<PacketRecord> packets = {
      make_record(0, Direction::kDownstream, 500, 1)};
  write_pcap(path_, packets);
  // Chop the last 10 bytes off the record body.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  PcapReader reader(path_);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST_F(PcapTest, SnaplenTruncatesButRecordsOriginalLength) {
  PcapWriter writer(path_, /*snaplen=*/60);
  CapturedFrame frame;
  frame.timestamp = 42;
  frame.bytes.assign(500, 0xaa);
  writer.write(frame);
  writer.close();

  PcapReader reader(path_);
  const auto loaded = reader.next();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->bytes.size(), 60u);
  EXPECT_EQ(loaded->original_length, 500u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, ReadPcapSkipsUndecodableFrames) {
  PcapWriter writer(path_);
  // A junk frame followed by a valid one.
  CapturedFrame junk;
  junk.timestamp = 1;
  junk.bytes.assign(40, 0x00);
  writer.write(junk);
  const auto good = make_record(2, Direction::kDownstream, 64, 9);
  CapturedFrame frame;
  frame.timestamp = good.timestamp;
  frame.bytes = encode_udp_frame(good.tuple, build_payload(good));
  writer.write(frame);
  writer.close();

  const auto loaded = read_pcap(path_, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].rtp->sequence, 9);
}

TEST_F(PcapTest, EmptyCaptureReadsBackEmpty) {
  write_pcap(path_, {});
  EXPECT_TRUE(read_pcap(path_, Ipv4Addr{0}).empty());
}

TEST_F(PcapTest, WriterFrameCountMatches) {
  PcapWriter writer(path_);
  CapturedFrame frame;
  frame.bytes.assign(60, 1);
  for (int i = 0; i < 7; ++i) writer.write(frame);
  EXPECT_EQ(writer.frames_written(), 7u);
}

}  // namespace
}  // namespace cgctx::net
