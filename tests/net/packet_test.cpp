#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace cgctx::net {
namespace {

TEST(Ipv4Addr, FromOctetsAndToString) {
  const auto addr = Ipv4Addr::from_octets(192, 168, 1, 42);
  EXPECT_EQ(addr.value, 0xc0a8012au);
  EXPECT_EQ(to_string(addr), "192.168.1.42");
}

TEST(Ipv4Addr, ParseRoundTrip) {
  for (const std::string text :
       {"0.0.0.0", "255.255.255.255", "10.1.2.3", "119.81.4.250"}) {
    const auto parsed = parse_ipv4(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(to_string(*parsed), text);
  }
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  for (const std::string text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4 "}) {
    EXPECT_FALSE(parse_ipv4(text).has_value()) << text;
  }
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t{Ipv4Addr{1}, Ipv4Addr{2}, 1000, 2000, 17};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip.value, 2u);
  EXPECT_EQ(r.dst_ip.value, 1u);
  EXPECT_EQ(r.src_port, 2000);
  EXPECT_EQ(r.dst_port, 1000);
  EXPECT_EQ(r.protocol, 17);
}

TEST(FiveTuple, CanonicalIsOrientationInvariant) {
  const FiveTuple t{Ipv4Addr{7}, Ipv4Addr{3}, 555, 444, 17};
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
  // Canonical of a canonical tuple is itself.
  EXPECT_EQ(t.canonical().canonical(), t.canonical());
}

TEST(FiveTuple, OrderingIsTotal) {
  const FiveTuple a{Ipv4Addr{1}, Ipv4Addr{2}, 10, 20, 17};
  const FiveTuple b{Ipv4Addr{1}, Ipv4Addr{2}, 10, 21, 17};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(PacketRecord, IpLengthAddsHeaders) {
  PacketRecord pkt;
  pkt.payload_size = 1432;
  EXPECT_EQ(pkt.ip_length(), 1432u + 28u);
}

TEST(Direction, ToString) {
  EXPECT_STREQ(to_string(Direction::kUpstream), "up");
  EXPECT_STREQ(to_string(Direction::kDownstream), "down");
}

}  // namespace
}  // namespace cgctx::net
