#include "net/framing.hpp"

#include <gtest/gtest.h>

#include "net/byte_io.hpp"

namespace cgctx::net {
namespace {

FiveTuple test_tuple() {
  return FiveTuple{Ipv4Addr::from_octets(10, 0, 0, 5),
                   Ipv4Addr::from_octets(119, 81, 1, 9), 50123, 49004, 17};
}

TEST(Framing, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> payload(100, 0x42);
  const auto frame = encode_udp_frame(test_tuple(), payload);
  const auto decoded = decode_udp_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tuple, test_tuple());
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Framing, FrameSizeIsHeadersPlusPayload) {
  const std::vector<std::uint8_t> payload(64, 0);
  const auto frame = encode_udp_frame(test_tuple(), payload);
  EXPECT_EQ(frame.size(), 14u + 20u + 8u + 64u);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  const auto frame = encode_udp_frame(test_tuple(), {});
  const auto decoded = decode_udp_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Framing, RejectsCorruptedIpChecksum) {
  const std::vector<std::uint8_t> payload(10, 1);
  auto frame = encode_udp_frame(test_tuple(), payload);
  frame[14 + 12] ^= 0xff;  // corrupt source IP without fixing checksum
  EXPECT_FALSE(decode_udp_frame(frame).has_value());
}

TEST(Framing, RejectsNonIpv4Ethertype) {
  auto frame = encode_udp_frame(test_tuple(), {});
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_udp_frame(frame).has_value());
}

TEST(Framing, RejectsTruncatedFrame) {
  const std::vector<std::uint8_t> payload(50, 9);
  auto frame = encode_udp_frame(test_tuple(), payload);
  frame.resize(frame.size() - 20);
  EXPECT_FALSE(decode_udp_frame(frame).has_value());
}

TEST(Framing, RejectsNonUdpProtocol) {
  auto frame = encode_udp_frame(test_tuple(), {});
  frame[14 + 9] = 6;  // TCP
  // Fix the checksum so only the protocol check fires.
  frame[14 + 10] = 0;
  frame[14 + 11] = 0;
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(frame.data() + 14, 20));
  frame[14 + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[14 + 11] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_FALSE(decode_udp_frame(frame).has_value());
}

TEST(Framing, BuildPayloadEmbedsRtpHeader) {
  PacketRecord pkt;
  pkt.payload_size = 300;
  pkt.rtp = RtpHeader{.payload_type = 98, .marker = true, .sequence = 7,
                      .rtp_timestamp = 90000, .ssrc = 0x1234};
  const auto payload = build_payload(pkt);
  EXPECT_EQ(payload.size(), 300u);
  const auto rtp = parse_rtp(payload);
  ASSERT_TRUE(rtp.has_value());
  EXPECT_EQ(rtp->sequence, 7);
  EXPECT_TRUE(rtp->marker);
}

TEST(Framing, BuildPayloadWithoutRtpIsFiller) {
  PacketRecord pkt;
  pkt.payload_size = 48;
  const auto payload = build_payload(pkt);
  EXPECT_EQ(payload.size(), 48u);
}

TEST(Framing, RecordFromFrameAssignsDirectionByClientIp) {
  const auto client = Ipv4Addr::from_octets(10, 0, 0, 5);
  const std::vector<std::uint8_t> payload(20, 0);

  DecodedFrame up_frame{test_tuple(), payload};
  const auto up = record_from_frame(up_frame, 123, client);
  EXPECT_EQ(up.direction, Direction::kUpstream);
  EXPECT_EQ(up.timestamp, 123);
  EXPECT_EQ(up.payload_size, 20u);

  DecodedFrame down_frame{test_tuple().reversed(), payload};
  const auto down = record_from_frame(down_frame, 456, client);
  EXPECT_EQ(down.direction, Direction::kDownstream);
}

TEST(Framing, RecordFromFrameParsesRtpOpportunistically) {
  PacketRecord source;
  source.payload_size = 64;
  source.rtp = RtpHeader{.payload_type = 98, .marker = false, .sequence = 99,
                         .rtp_timestamp = 1, .ssrc = 2};
  DecodedFrame frame{test_tuple(), build_payload(source)};
  const auto record =
      record_from_frame(frame, 0, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_TRUE(record.rtp.has_value());
  EXPECT_EQ(record.rtp->sequence, 99);
}

}  // namespace
}  // namespace cgctx::net
