#include "net/pcapng.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/framing.hpp"

namespace cgctx::net {
namespace {

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("cgctx_pcapng_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".pcapng");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::filesystem::path path_;
};

PacketRecord make_record(Timestamp t, Direction dir, std::uint32_t payload,
                         std::uint16_t seq) {
  PacketRecord pkt;
  pkt.timestamp = t;
  pkt.direction = dir;
  pkt.payload_size = payload;
  const FiveTuple up{Ipv4Addr::from_octets(10, 0, 0, 5),
                     Ipv4Addr::from_octets(119, 81, 1, 9), 50123, 49004, 17};
  pkt.tuple = dir == Direction::kUpstream ? up : up.reversed();
  pkt.rtp = RtpHeader{.payload_type = 98, .marker = seq % 4 == 0,
                      .sequence = seq, .rtp_timestamp = seq * 100u,
                      .ssrc = 0x99aa};
  return pkt;
}

TEST_F(PcapngTest, RoundTripPreservesRecords) {
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 40; ++i)
    packets.push_back(make_record(
        static_cast<Timestamp>(i) * 33 * kNanosPerMilli + 7,
        i % 4 == 0 ? Direction::kUpstream : Direction::kDownstream,
        static_cast<std::uint32_t>(64 + i * 31), static_cast<std::uint16_t>(i)));
  EXPECT_EQ(write_pcapng(path_, packets), packets.size());

  const auto loaded = read_pcapng(path_, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].direction, packets[i].direction);
    EXPECT_EQ(loaded[i].payload_size, packets[i].payload_size);
    ASSERT_TRUE(loaded[i].rtp.has_value());
    EXPECT_EQ(loaded[i].rtp->sequence, packets[i].rtp->sequence);
  }
}

TEST_F(PcapngTest, NanosecondTimestampsSurvive) {
  const std::vector<PacketRecord> packets = {
      make_record(9'876'543'210'123'456, Direction::kDownstream, 500, 1)};
  write_pcapng(path_, packets);
  const auto loaded = read_pcapng(path_, Ipv4Addr::from_octets(10, 0, 0, 5));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].timestamp, 9'876'543'210'123'456);
}

TEST_F(PcapngTest, RejectsClassicPcapFile) {
  // A classic pcap file starts with a different magic.
  const std::vector<PacketRecord> one = {
      make_record(0, Direction::kDownstream, 100, 1)};
  write_pcap(path_, one);
  EXPECT_THROW(PcapngReader reader(path_), std::runtime_error);
}

TEST_F(PcapngTest, RejectsGarbage) {
  std::ofstream out(path_, std::ios::binary);
  out << "definitely not pcapng data, just some text";
  out.close();
  EXPECT_THROW(PcapngReader reader(path_), std::runtime_error);
}

TEST_F(PcapngTest, SkipsUnknownBlocks) {
  const std::vector<PacketRecord> one = {
      make_record(5, Direction::kDownstream, 80, 3)};
  write_pcapng(path_, one);
  // Append an unknown block type (e.g. a Name Resolution Block, 0x04)
  // followed by another valid capture section is overkill; instead,
  // prepend-style injection: append an unknown block and a second EPB by
  // rewriting through the writer API is not possible, so just verify the
  // reader tolerates a trailing unknown block.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const std::uint32_t type = 0x00000004;
    const std::uint32_t length = 16;  // 12 header/trailer + 4 body
    const std::uint32_t body = 0xdeadbeef;
    out.write(reinterpret_cast<const char*>(&type), 4);
    out.write(reinterpret_cast<const char*>(&length), 4);
    out.write(reinterpret_cast<const char*>(&body), 4);
    out.write(reinterpret_cast<const char*>(&length), 4);
  }
  PcapngReader reader(path_);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // unknown block skipped, EOF
}

TEST_F(PcapngTest, ThrowsOnCorruptTrailer) {
  const std::vector<PacketRecord> one = {
      make_record(0, Direction::kDownstream, 100, 1)};
  write_pcapng(path_, one);
  // Corrupt the final 4 bytes (the EPB's trailing length).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-4, std::ios::end);
  const std::uint32_t junk = 0x12345678;
  f.write(reinterpret_cast<const char*>(&junk), 4);
  f.close();
  PcapngReader reader(path_);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST_F(PcapngTest, SnaplenTruncates) {
  PcapngWriter writer(path_, /*snaplen=*/64);
  CapturedFrame frame;
  frame.timestamp = 1;
  frame.bytes.assign(400, 0xbb);
  writer.write(frame);
  writer.close();
  PcapngReader reader(path_);
  const auto loaded = reader.next();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->bytes.size(), 64u);
  EXPECT_EQ(loaded->original_length, 400u);
}

TEST_F(PcapngTest, EmptyCapture) {
  write_pcapng(path_, {});
  EXPECT_TRUE(read_pcapng(path_, Ipv4Addr{0}).empty());
}

}  // namespace
}  // namespace cgctx::net
