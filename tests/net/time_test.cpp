#include "net/time.hpp"

#include <gtest/gtest.h>

// The umbrella header must compile standalone (this TU is its only
// dedicated check).
#include "cgctx.hpp"

namespace cgctx::net {
namespace {

TEST(Time, SecondConversionsRoundTrip) {
  EXPECT_EQ(duration_from_seconds(1.0), kNanosPerSecond);
  EXPECT_EQ(duration_from_seconds(0.5), kNanosPerSecond / 2);
  EXPECT_DOUBLE_EQ(duration_to_seconds(kNanosPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(duration_to_seconds(duration_from_seconds(123.456)),
                   123.456);
}

TEST(Time, MillisecondConversions) {
  EXPECT_EQ(duration_from_millis(1.0), kNanosPerMilli);
  EXPECT_DOUBLE_EQ(duration_to_millis(duration_from_millis(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(duration_to_millis(kNanosPerSecond), 1000.0);
}

TEST(Time, NegativeDurationsSupported) {
  EXPECT_EQ(duration_from_seconds(-1.0), -kNanosPerSecond);
  EXPECT_DOUBLE_EQ(duration_to_millis(-kNanosPerMilli), -1.0);
}

TEST(Time, ConstantsConsistent) {
  EXPECT_EQ(kNanosPerSecond, 1000 * kNanosPerMilli);
  EXPECT_EQ(kNanosPerMilli, 1000 * kNanosPerMicro);
}

TEST(Time, LargeTimestampsDoNotOverflow) {
  // Three months of deployment (the paper's window) in nanoseconds is
  // far inside the Timestamp range.
  const Timestamp three_months = duration_from_seconds(90.0 * 24 * 3600);
  EXPECT_GT(three_months, 0);
  EXPECT_DOUBLE_EQ(duration_to_seconds(three_months), 90.0 * 24 * 3600);
}

}  // namespace
}  // namespace cgctx::net
