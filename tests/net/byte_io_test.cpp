#include "net/byte_io.hpp"

#include <gtest/gtest.h>

namespace cgctx::net {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16_be(0x1234);
  w.write_u32_be(0xdeadbeef);
  const auto& data = w.data();
  ASSERT_EQ(data.size(), 7u);
  EXPECT_EQ(data[0], 0xab);
  EXPECT_EQ(data[1], 0x12);
  EXPECT_EQ(data[2], 0x34);
  EXPECT_EQ(data[3], 0xde);
  EXPECT_EQ(data[4], 0xad);
  EXPECT_EQ(data[5], 0xbe);
  EXPECT_EQ(data[6], 0xef);
}

TEST(ByteWriter, WritesLittleEndianIntegers) {
  ByteWriter w;
  w.write_u16_le(0x1234);
  w.write_u32_le(0xdeadbeef);
  const auto& data = w.data();
  ASSERT_EQ(data.size(), 6u);
  EXPECT_EQ(data[0], 0x34);
  EXPECT_EQ(data[1], 0x12);
  EXPECT_EQ(data[2], 0xef);
  EXPECT_EQ(data[3], 0xbe);
  EXPECT_EQ(data[4], 0xad);
  EXPECT_EQ(data[5], 0xde);
}

TEST(ByteWriter, FillAppendsRepeatedByte) {
  ByteWriter w;
  w.write_fill(5, 0x7f);
  EXPECT_EQ(w.size(), 5u);
  for (std::uint8_t b : w.data()) EXPECT_EQ(b, 0x7f);
}

TEST(ByteReaderWriter, RoundTripsAllWidths) {
  ByteWriter w;
  w.write_u8(0x01);
  w.write_u16_be(0xbeef);
  w.write_u32_be(0x01020304);
  w.write_u16_le(0xcafe);
  w.write_u32_le(0xa1b2c3d4);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 0x01);
  EXPECT_EQ(r.read_u16_be(), 0xbeef);
  EXPECT_EQ(r.read_u32_be(), 0x01020304u);
  EXPECT_EQ(r.read_u16_le(), 0xcafe);
  EXPECT_EQ(r.read_u32_le(), 0xa1b2c3d4u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, FailsOnUnderflowAndStaysFailed) {
  const std::uint8_t bytes[] = {0x01, 0x02};
  ByteReader r(bytes);
  EXPECT_EQ(r.read_u32_be(), 0u);
  EXPECT_FALSE(r.ok());
  // After failure all reads return 0 and remaining is 0.
  EXPECT_EQ(r.read_u8(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, SkipAdvancesAndBoundsChecks) {
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  ByteReader r(bytes);
  r.skip(3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.read_u8(), 4);
  r.skip(1);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, ReadBytesCopiesExactRange) {
  const std::uint8_t bytes[] = {9, 8, 7, 6, 5};
  ByteReader r(bytes);
  r.skip(1);
  const auto out = r.read_bytes(3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 8);
  EXPECT_EQ(out[2], 6);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(InternetChecksum, MatchesRfc1071Example) {
  // Canonical example: checksum of this sequence is 0xddf2 (RFC 1071 data
  // 00 01 f2 03 f4 f5 f6 f7 has sum 0x2210+0xddf2 complement relation).
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internet_checksum(data);
  // Verifying property: appending the checksum makes the total sum 0.
  std::vector<std::uint8_t> with_sum(std::begin(data), std::end(data));
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xff));
  EXPECT_EQ(internet_checksum(with_sum), 0);
}

TEST(InternetChecksum, HandlesOddLength) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  const std::uint16_t sum = internet_checksum(data);
  std::vector<std::uint8_t> padded = {0x12, 0x34, 0x56, 0x00};
  // Odd-length input is implicitly zero-padded, so both agree.
  EXPECT_EQ(sum, internet_checksum(std::span<const std::uint8_t>(padded.data(), 4)));
}

}  // namespace
}  // namespace cgctx::net
