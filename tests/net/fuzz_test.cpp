// Robustness tests: the wire-format parsers must never crash, hang, or
// read out of bounds on arbitrary input — an inline probe parses
// attacker-controlled bytes. (Deterministic pseudo-fuzz: thousands of
// random and mutated buffers per parser.)
#include <gtest/gtest.h>

#include "ml/rng.hpp"
#include "net/framing.hpp"
#include "net/rtp.hpp"

namespace cgctx::net {
namespace {

std::vector<std::uint8_t> random_bytes(ml::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

TEST(Fuzz, ParseRtpNeverCrashesOnRandomBytes) {
  ml::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_bytes(rng, 64);
    (void)parse_rtp(bytes);  // must not crash; result irrelevant
  }
}

TEST(Fuzz, DecodeUdpFrameNeverCrashesOnRandomBytes) {
  ml::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_bytes(rng, 200);
    (void)decode_udp_frame(bytes);
  }
}

TEST(Fuzz, DecodeUdpFrameNeverCrashesOnMutatedValidFrames) {
  // Start from a valid frame and flip bytes: decode must either reject
  // or produce a well-formed result, never crash.
  const FiveTuple tuple{Ipv4Addr::from_octets(10, 0, 0, 1),
                        Ipv4Addr::from_octets(119, 81, 1, 1), 50000, 49004, 17};
  PacketRecord pkt;
  pkt.payload_size = 120;
  pkt.rtp = RtpHeader{.payload_type = 98, .marker = true, .sequence = 9,
                      .rtp_timestamp = 1, .ssrc = 2};
  pkt.tuple = tuple;
  const auto base = encode_udp_frame(tuple, build_payload(pkt));
  ml::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    auto frame = base;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f)
      frame[rng.next_below(frame.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto decoded = decode_udp_frame(frame);
    if (decoded) {
      // Any accepted frame must be internally consistent.
      EXPECT_LE(decoded->payload.size(), frame.size());
    }
  }
}

TEST(Fuzz, DecodeUdpFrameNeverCrashesOnTruncations) {
  const FiveTuple tuple{Ipv4Addr::from_octets(10, 0, 0, 1),
                        Ipv4Addr::from_octets(119, 81, 1, 1), 50000, 49004, 17};
  const std::vector<std::uint8_t> payload(300, 0x5a);
  const auto base = encode_udp_frame(tuple, payload);
  for (std::size_t len = 0; len <= base.size(); ++len) {
    const std::span<const std::uint8_t> prefix(base.data(), len);
    const auto decoded = decode_udp_frame(prefix);
    if (len < base.size()) {
      EXPECT_FALSE(decoded.has_value()) << len;
    }
  }
}

TEST(Fuzz, Ipv4ParserNeverCrashesOnRandomStrings) {
  ml::Rng rng(4);
  const char alphabet[] = "0123456789. abcxyz-";
  for (int i = 0; i < 20000; ++i) {
    std::string text(rng.next_below(24), ' ');
    for (char& c : text)
      c = alphabet[rng.next_below(sizeof alphabet - 1)];
    (void)parse_ipv4(text);
  }
}

}  // namespace
}  // namespace cgctx::net
