#include "net/flow_table.hpp"

#include <gtest/gtest.h>

namespace cgctx::net {
namespace {

FiveTuple tuple_a() {
  return FiveTuple{Ipv4Addr{0x0a000001}, Ipv4Addr{0x77510101}, 50000, 49004, 17};
}

PacketRecord packet(const FiveTuple& t, Direction dir, Timestamp ts,
                    std::uint32_t payload) {
  PacketRecord pkt;
  pkt.tuple = dir == Direction::kUpstream ? t : t.reversed();
  pkt.direction = dir;
  pkt.timestamp = ts;
  pkt.payload_size = payload;
  return pkt;
}

TEST(FlowTable, BothDirectionsShareOneFlow) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 100));
  table.add(packet(tuple_a(), Direction::kDownstream, kNanosPerSecond, 1432));
  EXPECT_EQ(table.size(), 1u);
  const FlowState* flow = table.find(tuple_a());
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->up.packets, 1u);
  EXPECT_EQ(flow->down.packets, 1u);
  EXPECT_EQ(flow->total_packets(), 2u);
  EXPECT_EQ(flow->age(), kNanosPerSecond);
}

TEST(FlowTable, FindWorksWithEitherOrientation) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));
  EXPECT_NE(table.find(tuple_a()), nullptr);
  EXPECT_NE(table.find(tuple_a().reversed()), nullptr);
}

TEST(FlowTable, DistinctTuplesAreDistinctFlows) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));
  FiveTuple other = tuple_a();
  other.src_port = 50001;
  table.add(packet(other, Direction::kUpstream, 0, 10));
  EXPECT_EQ(table.size(), 2u);
}

TEST(DirectionStats, TracksPayloadExtremesAndBytes) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kDownstream, 0, 700));
  table.add(packet(tuple_a(), Direction::kDownstream, 1, 1432));
  table.add(packet(tuple_a(), Direction::kDownstream, 2, 60));
  const FlowState* flow = table.find(tuple_a());
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->down.min_payload, 60u);
  EXPECT_EQ(flow->down.max_payload, 1432u);
  EXPECT_EQ(flow->down.bytes, 700u + 1432u + 60u);
}

TEST(DirectionStats, RtpConsistencyCountsSameSsrc) {
  FlowTable table;
  for (int i = 0; i < 8; ++i) {
    auto pkt = packet(tuple_a(), Direction::kDownstream, i, 1000);
    pkt.rtp = RtpHeader{.payload_type = 98, .marker = false,
                        .sequence = static_cast<std::uint16_t>(i),
                        .rtp_timestamp = 0,
                        .ssrc = i < 6 ? 0x11u : 0x22u};
    table.add(pkt);
  }
  // Two non-RTP packets.
  table.add(packet(tuple_a(), Direction::kDownstream, 8, 1000));
  table.add(packet(tuple_a(), Direction::kDownstream, 9, 1000));
  const FlowState* flow = table.find(tuple_a());
  EXPECT_EQ(flow->down.rtp_packets, 8u);
  EXPECT_EQ(flow->down.rtp_same_ssrc, 6u);
  EXPECT_DOUBLE_EQ(flow->downstream_rtp_consistency(), 0.6);
}

TEST(FlowState, DownstreamBpsFromBytesAndAge) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kDownstream, 0, 125000));
  table.add(packet(tuple_a(), Direction::kDownstream, kNanosPerSecond, 125000));
  const FlowState* flow = table.find(tuple_a());
  // 250 kB over 1 s = 2 Mbps.
  EXPECT_NEAR(flow->downstream_bps(), 2e6, 1.0);
}

TEST(FlowState, ZeroAgeHasZeroBps) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kDownstream, 5, 1000));
  EXPECT_DOUBLE_EQ(table.find(tuple_a())->downstream_bps(), 0.0);
}

TEST(FlowTable, EvictIdleRemovesOnlyStaleFlows) {
  FlowTable table(10 * kNanosPerSecond);
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));
  FiveTuple fresh = tuple_a();
  fresh.src_port = 50002;
  table.add(packet(fresh, Direction::kUpstream, 9 * kNanosPerSecond, 10));
  const auto evicted = table.evict_idle(15 * kNanosPerSecond);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, tuple_a().canonical());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.find(fresh), nullptr);
}

TEST(FlowTable, EvictIdleCountsEvictions) {
  FlowTable table(10 * kNanosPerSecond);
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));
  EXPECT_EQ(table.evictions(), 0u);
  table.evict_idle(15 * kNanosPerSecond);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(FlowTable, AddEvictsIdleFlowsLazily) {
  // The documented behavior: add() itself sweeps idle flows every
  // kLazyEvictStride calls, so an owner that never sweeps explicitly
  // still gets a bounded table.
  FlowTable table(10 * kNanosPerSecond);
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));

  FiveTuple busy = tuple_a();
  busy.src_port = 50010;
  const Timestamp late = 60 * kNanosPerSecond;
  for (std::uint64_t i = 0; i <= FlowTable::kLazyEvictStride; ++i)
    table.add(packet(busy, Direction::kUpstream,
                     late + static_cast<Timestamp>(i), 10));

  // The idle flow was discarded by the lazy sweep; the busy one remains.
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(tuple_a()), nullptr);
  EXPECT_NE(table.find(busy), nullptr);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(FlowTable, EraseDropsFlowWithoutCountingEviction) {
  FlowTable table;
  table.add(packet(tuple_a(), Direction::kUpstream, 0, 10));
  EXPECT_TRUE(table.erase(tuple_a().reversed()));  // either orientation
  EXPECT_FALSE(table.erase(tuple_a()));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evictions(), 0u);

  // A re-added tuple starts from fresh statistics.
  table.add(packet(tuple_a(), Direction::kUpstream, 5 * kNanosPerSecond, 10));
  const FlowState* flow = table.find(tuple_a());
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->first_seen, 5 * kNanosPerSecond);
  EXPECT_EQ(flow->total_packets(), 1u);
}

TEST(FlowTable, FlowsSnapshotIsOrderedAndComplete) {
  FlowTable table;
  for (std::uint16_t port = 50005; port > 50000; --port) {
    FiveTuple t = tuple_a();
    t.src_port = port;
    table.add(packet(t, Direction::kUpstream, 0, 1));
  }
  const auto flows = table.flows();
  ASSERT_EQ(flows.size(), 5u);
  for (std::size_t i = 1; i < flows.size(); ++i)
    EXPECT_LT(flows[i - 1]->key, flows[i]->key);
}

}  // namespace
}  // namespace cgctx::net
